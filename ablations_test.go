package cagc

import "testing"

func TestAblateWriteBuffer(t *testing.T) {
	pts, cagcRef, err := AblateWriteBuffer(Homes, []int{8, 256}, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || cagcRef == nil {
		t.Fatalf("points = %d", len(pts))
	}
	// A larger buffer programs less flash on a skewed workload.
	small := pts[0].Baseline.FTL.UserPrograms
	large := pts[1].Baseline.FTL.UserPrograms
	if large >= small {
		t.Errorf("buffer 256 wrote %d programs, buffer 8 wrote %d — want fewer", large, small)
	}
	// Buffered writes complete at RAM speed: write latency collapses.
	if pts[1].Baseline.WriteLatency.Mean() >= cagcRef.WriteLatency.Mean()*2 {
		t.Errorf("buffered write mean %.1fµs suspiciously high",
			pts[1].Baseline.WriteLatency.Mean()/1000)
	}
}

func TestAblateWearLevel(t *testing.T) {
	// Deep churn on the low-dedup workload skews wear enough for the
	// static swap to fire. (Mechanism-level coverage with manufactured
	// skew lives in internal/ftl.)
	p := testParams()
	p.Requests = 12000
	a, err := AblateWearLevel(Homes, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Off.FTL.WLSwaps != 0 {
		t.Fatal("wear leveling ran while disabled")
	}
	// Leveling must not increase the erase-count spread.
	if a.On.EraseSpread > a.Off.EraseSpread {
		t.Errorf("WL widened the spread: %d -> %d", a.Off.EraseSpread, a.On.EraseSpread)
	}
}

func TestAblateIndexCapacity(t *testing.T) {
	pts, err := AblateIndexCapacity(Mail, []int{16, 0}, testParams())
	if err != nil {
		t.Fatal(err)
	}
	capped, unlimited := pts[0].Result, pts[1].Result
	// A 16-fingerprint cache forfeits dedup hits: fewer drops, more
	// migrated pages.
	if capped.FTL.GCDupDropped >= unlimited.FTL.GCDupDropped {
		t.Errorf("capped index dropped %d >= unlimited %d",
			capped.FTL.GCDupDropped, unlimited.FTL.GCDupDropped)
	}
	if capped.FTL.PagesMigrated <= unlimited.FTL.PagesMigrated {
		t.Errorf("capped index migrated %d <= unlimited %d",
			capped.FTL.PagesMigrated, unlimited.FTL.PagesMigrated)
	}
}

func TestBufferedRunEndToEnd(t *testing.T) {
	p := testParams()
	p.BufferPages = 64
	res, err := Run(Homes, Baseline, "greedy", p)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(Homes, Baseline, "greedy", testParams())
	if err != nil {
		t.Fatal(err)
	}
	// The buffer absorbs part of the write traffic.
	if res.FTL.UserPrograms >= plain.FTL.UserPrograms {
		t.Errorf("buffered programs %d >= unbuffered %d",
			res.FTL.UserPrograms, plain.FTL.UserPrograms)
	}
	if res.Buffer.WriteHits == 0 {
		t.Error("buffer recorded no coalesced writes")
	}
	if plain.Buffer.WriteHits != 0 {
		t.Error("unbuffered run has buffer stats")
	}
}

func TestBufferedCAGCStillConsistent(t *testing.T) {
	p := testParams()
	p.BufferPages = 32
	res, err := Run(Mail, CAGC, "greedy", p)
	if err != nil {
		t.Fatal(err) // Run includes the post-run invariant check
	}
	if res.FTL.GCDupDropped == 0 {
		t.Error("buffered CAGC never deduplicated")
	}
}

func TestThroughputCurve(t *testing.T) {
	p := testParams()
	p.Requests = 2500
	pts, err := ThroughputCurve(Mail, []int{1, 8}, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, pt := range pts {
		if pt.Baseline.IOPS() <= 0 || pt.CAGC.IOPS() <= 0 {
			t.Fatalf("qd %d: zero throughput", pt.QueueDepth)
		}
	}
	// Under saturation CAGC's lighter GC load yields at least as much
	// throughput as the baseline at the deeper queue.
	deep := pts[1]
	if deep.CAGC.IOPS() < deep.Baseline.IOPS()*0.95 {
		t.Errorf("CAGC %.0f IOPS well below baseline %.0f at QD8",
			deep.CAGC.IOPS(), deep.Baseline.IOPS())
	}
}

func TestAblateMappingCache(t *testing.T) {
	pts, err := AblateMappingCache(Mail, []int{512, 0}, testParams())
	if err != nil {
		t.Fatal(err)
	}
	tiny, full := pts[0].Result, pts[1].Result
	// A one-page CMT must cost response time relative to a RAM map.
	if tiny.MeanLatency() <= full.MeanLatency() {
		t.Errorf("tiny CMT mean %.1fµs <= full map %.1fµs",
			tiny.MeanLatency(), full.MeanLatency())
	}
}

func TestAblateWatermark(t *testing.T) {
	pts, err := AblateWatermark(WebVM, []float64{0.10, 0.25}, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, pt := range pts {
		// CAGC's reductions must survive the trigger change.
		if pt.CAGC.FTL.PagesMigrated >= pt.Baseline.FTL.PagesMigrated {
			t.Errorf("watermark %.2f: CAGC migrated %d >= baseline %d",
				pt.Watermark, pt.CAGC.FTL.PagesMigrated, pt.Baseline.FTL.PagesMigrated)
		}
	}
	if _, err := AblateWatermark(WebVM, []float64{0.95}, testParams()); err == nil {
		t.Error("invalid watermark accepted")
	}
}

func TestArrayStudy(t *testing.T) {
	p := testParams()
	p.Requests = 3000
	rows, err := ArrayStudy(Mail, []Scheme{Baseline, CAGC}, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PlainRead.Requests != 3000 || r.SteeredRead.Requests != 3000 {
			t.Fatalf("%v: incomplete replays: %d/%d",
				r.Scheme, r.PlainRead.Requests, r.SteeredRead.Requests)
		}
		if r.SteeredRead.SteeredReads == 0 {
			t.Errorf("%v: steering never fired", r.Scheme)
		}
	}
	// CAGC members give the mirrored volume a better read tail than
	// Baseline members under the same steering policy.
	base, cg := rows[0], rows[1]
	if cg.SteeredRead.ReadLatency.Percentile(0.99) >= base.SteeredRead.ReadLatency.Percentile(0.99) {
		t.Errorf("array read p99: CAGC %v >= Baseline %v",
			cg.SteeredRead.ReadLatency.Percentile(0.99),
			base.SteeredRead.ReadLatency.Percentile(0.99))
	}
}
