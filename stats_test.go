package cagc

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestNewMetric(t *testing.T) {
	m := newMetric([]float64{2, 4, 6})
	if m.Mean != 4 || m.N != 3 {
		t.Fatalf("metric = %+v", m)
	}
	if math.Abs(m.Stddev-2) > 1e-9 {
		t.Fatalf("stddev = %v, want 2", m.Stddev)
	}
	if m.RelStddev() != 0.5 {
		t.Fatalf("rel = %v", m.RelStddev())
	}
	if newMetric(nil).N != 0 {
		t.Fatal("empty metric nonzero")
	}
	if one := newMetric([]float64{7}); one.Stddev != 0 || one.Mean != 7 {
		t.Fatalf("single sample = %+v", one)
	}
	var zero Metric
	if zero.RelStddev() != 0 {
		t.Fatal("zero-mean rel stddev")
	}
	if m.String() == "" {
		t.Fatal("empty string")
	}
}

func TestNewMetricProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := float64(raw[0]), float64(raw[0])
		for i, r := range raw {
			xs[i] = float64(r)
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		m := newMetric(xs)
		// Mean within range; stddev bounded by the range.
		return m.Mean >= lo-1e-9 && m.Mean <= hi+1e-9 && m.Stddev <= (hi-lo)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSeeds(t *testing.T) {
	p := testParams()
	p.Requests = 2500
	agg, err := RunSeeds(Mail, CAGC, "greedy", p, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Scheme != "CAGC" || len(agg.Results) != 3 {
		t.Fatalf("aggregate = %+v", agg)
	}
	if agg.BlocksErased.N != 3 || agg.BlocksErased.Mean <= 0 {
		t.Fatalf("erased metric = %+v", agg.BlocksErased)
	}
	// Different seeds genuinely vary the workload.
	if agg.MeanLatencyUs.Stddev == 0 && agg.BlocksErased.Stddev == 0 {
		t.Error("no cross-seed variation at all")
	}
	if _, err := RunSeeds(Mail, CAGC, "greedy", p, nil); err == nil {
		t.Error("empty seed list accepted")
	}
}

func TestCompareSeeds(t *testing.T) {
	p := testParams()
	p.Requests = 2500
	cmp, err := CompareSeeds(Mail, "greedy", p, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's claims must hold in the mean across seeds, with
	// modest spread.
	if cmp.ErasedReduction.Mean <= 0 {
		t.Errorf("erased reduction = %v", cmp.ErasedReduction)
	}
	if cmp.MigratedReduction.Mean <= 0.5 {
		t.Errorf("Mail migration reduction = %v, want large", cmp.MigratedReduction)
	}
	if cmp.LatencyReduction.Mean <= 0 {
		t.Errorf("latency reduction = %v", cmp.LatencyReduction)
	}
	if cmp.MigratedReduction.RelStddev() > 0.5 {
		t.Errorf("migration reduction unstable across seeds: %v", cmp.MigratedReduction)
	}
}

func TestForEach(t *testing.T) {
	// Results land in order and all indices run exactly once.
	n := 100
	got := make([]int, n)
	if err := forEach(n, func(i int) error {
		got[i] = i + 1
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
	// Zero tasks is a no-op.
	if err := forEach(0, func(int) error { t.Fatal("ran"); return nil }); err != nil {
		t.Fatal(err)
	}
	// The lowest-index error wins deterministically.
	err := forEach(50, func(i int) error {
		if i%10 == 3 {
			return fmt.Errorf("boom %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "boom 3" {
		t.Fatalf("err = %v, want boom 3", err)
	}
}

func TestFigure13ParallelMatchesSequential(t *testing.T) {
	// Parallel fan-out must be bit-identical to a single-threaded pass.
	p := testParams()
	p.Requests = 1200
	a, err := Figure13(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure13(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cell %d differs across runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
