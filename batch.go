package cagc

// Batched multi-run execution at the harness level. A batch is the unit
// the evaluation actually consumes — seed sweeps, scheme × policy
// grids, parameter curves — and running its points independently
// re-pays snapshot lookup and scheduling per run. RunBatch executes N
// run descriptors over the shared worker pool with the warm-state
// snapshot registry underneath: items that share a warm key clone from
// one snapshot (built once, singleflight), results land in
// index-addressed slots, and the batch reports the aggregate
// events/sec-per-machine number the substrate trajectory tracks.
// Dispatch is batch-aware (pool.Run): items are scheduled
// longest-estimated-first from the shared pool.Cost model, with work
// stealing so heterogeneous batches don't serialize behind a straggler.
// Per-run output is byte-identical to calling Run in a loop, at any
// worker count.

import (
	"runtime"
	"time"

	"cagc/internal/pool"
)

// BatchItem describes one run of a batch — exactly the arguments of
// Run. An empty Policy means "greedy".
type BatchItem struct {
	Workload Workload
	Scheme   Scheme
	Policy   string
	Params   Params
}

// ErrNotRun marks batch slots whose run was never dispatched because an
// earlier run failed first (re-exported from the worker pool so callers
// can classify Errs without importing it).
var ErrNotRun = pool.ErrNotRun

// BatchResult is the outcome of one RunBatch call. Results and Errs are
// index-addressed against the input items: Results[i] is non-nil
// exactly where Errs[i] is nil (Errs itself is nil when every run
// completed).
type BatchResult struct {
	Results []*Result
	Errs    []error
	Workers int           // worker count actually used
	Wall    time.Duration // wall clock of the whole batch
	Events  uint64        // simulated events summed over completed runs
}

// Completed counts runs that finished and have a Result.
func (b *BatchResult) Completed() int { return b.count(func(err error) bool { return err == nil }) }

// Failed counts runs that were dispatched and returned an error.
func (b *BatchResult) Failed() int {
	return b.count(func(err error) bool { return err != nil && err != ErrNotRun })
}

// Skipped counts runs never dispatched because dispatch stopped at an
// earlier failure.
func (b *BatchResult) Skipped() int { return b.count(func(err error) bool { return err == ErrNotRun }) }

func (b *BatchResult) count(pred func(error) bool) int {
	if b.Errs == nil {
		if pred(nil) {
			return len(b.Results)
		}
		return 0
	}
	n := 0
	for _, err := range b.Errs {
		if pred(err) {
			n++
		}
	}
	return n
}

// Err collapses the per-run errors to the first failure by index order
// (nil when every run completed), for callers that only need pass/fail.
func (b *BatchResult) Err() error { return pool.First(b.Errs) }

// AggregateEventsPerSec is the batch's machine-level throughput: total
// simulated events of every completed run divided by the batch's wall
// clock. This is the number parallel execution moves — per-run
// EventsPerSec measures one core's simulation speed; the aggregate
// measures how fast the machine retires a sweep.
func (b *BatchResult) AggregateEventsPerSec() float64 {
	if b.Wall <= 0 {
		return 0
	}
	return float64(b.Events) / b.Wall.Seconds()
}

// RunBatch executes items on up to workers goroutines (workers <= 0
// means GOMAXPROCS) and returns the index-addressed outcome. Dispatch
// stops at the first failure; runs already in flight complete, and
// slots never dispatched carry ErrNotRun. Items that share a warm state
// (same device, scheme, utilization, precondition parameters) clone
// from one cached snapshot; concurrent first requests share a single
// build.
func RunBatch(items []BatchItem, workers int) *BatchResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	b := &BatchResult{
		Results: make([]*Result, len(items)),
		Workers: workers,
	}
	start := time.Now()
	st := pool.Run(len(items), pool.Options{
		Workers: workers,
		Weight: func(i int) float64 {
			p := items[i].Params.withDefaults()
			return pool.Cost.Estimate(string(items[i].Workload), float64(p.Requests))
		},
	}, func(i int) error {
		it := items[i]
		policy := it.Policy
		if policy == "" {
			policy = "greedy"
		}
		t0 := time.Now()
		res, err := Run(it.Workload, it.Scheme, policy, it.Params)
		if err != nil {
			return err
		}
		pool.Cost.Observe(string(it.Workload),
			float64(it.Params.withDefaults().Requests), float64(time.Since(t0)))
		b.Results[i] = res
		return nil
	})
	b.Errs = st.Errs
	b.Wall = time.Since(start)
	for i, res := range b.Results {
		if res != nil && (b.Errs == nil || b.Errs[i] == nil) {
			b.Events += simulatedEvents(res)
		}
	}
	return b
}

// SeedBatch builds the most common batch shape: one item per seed, all
// other parameters shared. Every item lands on the same warm snapshot
// (greedy and cost-benefit policies; the random policy keys its seed
// into the warm state, so each seed builds its own).
func SeedBatch(w Workload, s Scheme, policy string, p Params, seeds []int64) []BatchItem {
	items := make([]BatchItem, len(seeds))
	for i, seed := range seeds {
		q := p
		q.Seed = seed
		items[i] = BatchItem{Workload: w, Scheme: s, Policy: policy, Params: q}
	}
	return items
}
