package cagc

// Machine-readable result export. Result holds live histogram
// structures; Summary is the flattened, JSON-stable view tooling
// consumes (cagcsim -json, spreadsheet pipelines).

import (
	"encoding/json"
	"io"
)

// LatencySummary flattens one latency histogram.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P90Us  float64 `json:"p90_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`
}

// Summary is the JSON-stable view of a Result.
type Summary struct {
	// ConfigKey is the canonical run identity (see ConfigKey): set when
	// the producer knows the full run configuration (cagcsim -json, the
	// serving layer's result documents), empty otherwise — a Result
	// alone does not carry every identity field.
	ConfigKey string `json:"config_key,omitempty"`

	Scheme   string `json:"scheme"`
	Workload string `json:"workload"`
	Policy   string `json:"policy"`

	Requests   uint64  `json:"requests"`
	DurationMs float64 `json:"duration_ms"`
	IOPS       float64 `json:"iops"`

	Latency      LatencySummary `json:"latency"`
	ReadLatency  LatencySummary `json:"read_latency"`
	WriteLatency LatencySummary `json:"write_latency"`
	GCLatency    LatencySummary `json:"gc_latency"`

	UserReadPages  uint64 `json:"user_read_pages"`
	UserWritePages uint64 `json:"user_write_pages"`
	UserTrimPages  uint64 `json:"user_trim_pages"`
	UserPrograms   uint64 `json:"user_programs"`
	InlineDupHits  uint64 `json:"inline_dup_hits"`

	GCInvocations uint64 `json:"gc_invocations"`
	IdleGCWindows uint64 `json:"idle_gc_windows"`
	BlocksErased  uint64 `json:"blocks_erased"`
	PagesMigrated uint64 `json:"pages_migrated"`
	GCReads       uint64 `json:"gc_reads"`
	GCDupDropped  uint64 `json:"gc_dup_dropped"`
	Promotions    uint64 `json:"promotions"`
	WLSwaps       uint64 `json:"wl_swaps"`
	HashOps       uint64 `json:"hash_ops"`

	WriteAmplification float64    `json:"write_amplification"`
	RefDist            [4]uint64  `json:"refdist_counts"`
	RefShares          [4]float64 `json:"refdist_shares"`
	EraseSpread        int        `json:"erase_spread"`
	FreeFraction       float64    `json:"free_fraction"`

	// Tenants is present only for multi-tenant scenario runs (see
	// RunScenario): per-tenant latency distributions and SLO-violation
	// counts, in scenario tenant order.
	Tenants []TenantSummary `json:"tenants,omitempty"`
}

// TenantSummary is the JSON-stable view of one tenant's share of a
// multi-tenant replay.
type TenantSummary struct {
	Name     string `json:"name"`
	Requests uint64 `json:"requests"`
	// SLOUs is the tenant's latency objective in microseconds (0 when
	// none was set); SLOViolations counts requests that exceeded it.
	SLOUs         float64        `json:"slo_us"`
	SLOViolations uint64         `json:"slo_violations"`
	Latency       LatencySummary `json:"latency"`
}

// Summarize flattens a Result.
func Summarize(r *Result) Summary {
	lat := func(h interface {
		Count() uint64
		Mean() float64
		Percentile(float64) Time
		Max() Time
	}) LatencySummary {
		return LatencySummary{
			Count:  h.Count(),
			MeanUs: h.Mean() / 1000,
			P50Us:  h.Percentile(0.50).Micros(),
			P90Us:  h.Percentile(0.90).Micros(),
			P99Us:  h.Percentile(0.99).Micros(),
			P999Us: h.Percentile(0.999).Micros(),
			MaxUs:  h.Max().Micros(),
		}
	}
	var tenants []TenantSummary
	if len(r.Tenants) > 0 {
		tenants = make([]TenantSummary, len(r.Tenants))
		for i := range r.Tenants {
			t := &r.Tenants[i]
			tenants[i] = TenantSummary{
				Name:          t.Name,
				Requests:      t.Requests,
				SLOUs:         t.SLO.Micros(),
				SLOViolations: t.Violations,
				Latency:       lat(&t.Latency),
			}
		}
	}
	s := r.FTL
	return Summary{
		Scheme:   r.Scheme,
		Workload: r.Workload,
		Policy:   r.Policy,

		Requests:   r.Requests,
		DurationMs: r.Duration.Millis(),
		IOPS:       r.IOPS(),

		Latency:      lat(&r.Latency),
		ReadLatency:  lat(&r.ReadLatency),
		WriteLatency: lat(&r.WriteLatency),
		GCLatency:    lat(&r.GCLatency),

		UserReadPages:  s.UserReadPages,
		UserWritePages: s.UserWritePages,
		UserTrimPages:  s.UserTrimPages,
		UserPrograms:   s.UserPrograms,
		InlineDupHits:  s.InlineDupHits,

		GCInvocations: s.GCInvocations,
		IdleGCWindows: s.IdleGCWindows,
		BlocksErased:  s.BlocksErased,
		PagesMigrated: s.PagesMigrated,
		GCReads:       s.GCReads,
		GCDupDropped:  s.GCDupDropped,
		Promotions:    s.Promotions,
		WLSwaps:       s.WLSwaps,
		HashOps:       s.HashOps,

		WriteAmplification: s.WriteAmplification(),
		RefDist:            r.RefDist,
		RefShares:          r.RefShares(),
		EraseSpread:        r.EraseSpread,
		FreeFraction:       r.FreeFraction,

		Tenants: tenants,
	}
}

// WriteJSON emits the summary as indented JSON.
func WriteJSON(w io.Writer, r *Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Summarize(r))
}

// WriteJSONKey is WriteJSON with the canonical config key stamped into
// the document, so CLI output and service cache entries for the same
// configuration are cross-checkable (and byte-identical).
func WriteJSONKey(w io.Writer, r *Result, key string) error {
	s := Summarize(r)
	s.ConfigKey = key
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
