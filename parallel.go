package cagc

// Harness-level parallelism. Each simulation is an independent,
// deterministic, single-threaded computation, so experiments that need
// many runs (three workloads x three schemes x three policies, seed
// sweeps, queue-depth curves) fan them out across CPUs. Results are
// written into index-addressed slots, so parallel execution is
// bit-identical to sequential execution.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// forEach runs task(0..n-1) on up to GOMAXPROCS goroutines and returns
// the first error (by index order, so failures are deterministic too).
// Dispatch stops at the first failure: indices not yet handed to a
// worker when a task errors are never run — a sweep with a broken
// configuration fails in one run's time, not n's.
func forEach(n int, task func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := task(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var failed atomic.Bool
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := task(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n && !failed.Load(); i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
