package cagc

// Harness-level parallelism. Each simulation is an independent,
// deterministic, single-threaded computation, so experiments that need
// many runs (three workloads x three schemes x three policies, seed
// sweeps, queue-depth curves) fan them out across CPUs. Results are
// written into index-addressed slots, so parallel execution is
// bit-identical to sequential execution.
//
// The pool itself lives in internal/pool (shared with the batched
// execution engine in internal/sim). It reports one error per index —
// nil, the task's failure, or pool.ErrNotRun for tasks skipped after
// dispatch stopped — which is what RunBatch surfaces; forEach keeps
// the collapsed first-error-by-index contract for the sweep helpers.

import "cagc/internal/pool"

// forEach runs task(0..n-1) on up to GOMAXPROCS goroutines and returns
// the first error (by index order, so failures are deterministic too).
// Dispatch stops at the first failure: indices not yet handed to a
// worker when a task errors are never run — a sweep with a broken
// configuration fails in one run's time, not n's.
func forEach(n int, task func(i int) error) error {
	return pool.First(pool.ForEach(n, 0, task))
}
