package cagc

// Multi-tenant scenario composer: the production-shaped workload half
// of the streaming pipeline. Several named tenants — each a synthetic
// Table-II preset or a trace file — share one device, each in its own
// slice of the logical address space, merged time-ordered with
// per-tenant rate scaling and an optional diurnal burst envelope over
// the merged stream. The replay attributes every request back to its
// tenant, so the result carries per-tenant latency distributions and
// SLO-violation counts next to the device-wide figures.

import (
	"fmt"
	"strings"

	"cagc/internal/event"
	"cagc/internal/flash"
	"cagc/internal/ftl"
	"cagc/internal/sim"
	"cagc/internal/trace"
)

// TenantSpec describes one tenant of a scenario.
type TenantSpec struct {
	// Name labels the tenant in results; defaults to the workload name
	// (or the file path).
	Name string
	// Workload selects a synthetic Table-II preset for this tenant.
	// Ignored when Path is set.
	Workload Workload
	// Path, when set, streams a trace file (any supported format) as
	// this tenant's request stream instead of a synthetic preset.
	Path string
	// Format and TimeScale are ReplayFileOptions for Path (format
	// override and FIU inter-arrival scaling).
	Format    string
	TimeScale float64
	// Rate multiplies the tenant's arrival rate: 2 issues twice as
	// fast, 0.5 half. 0 means 1.0.
	Rate float64
	// SLOUs is the tenant's per-request latency objective in
	// microseconds; responses slower than this count as violations.
	// 0 inherits ScenarioParams.SLOUs.
	SLOUs float64
	// Requests is the tenant's measured request count when synthetic;
	// 0 means an equal share of Params.Requests.
	Requests int
	// Seed overrides the tenant's generator seed; 0 derives a distinct
	// per-tenant seed from Params.Seed, so two tenants running the
	// same workload still produce different streams.
	Seed int64
}

// ScenarioParams composes a multi-tenant scenario.
type ScenarioParams struct {
	// Tenants are the participating streams; at least one.
	Tenants []TenantSpec
	// DiurnalPeriod/DiurnalAmp shape the merged stream's arrival rate
	// with a sinusoidal burst envelope: rate(t) = 1 + Amp·sin(2πt/P).
	// Period 0 or Amp 0 disables it; Amp must be in [0, 1).
	DiurnalPeriod Time
	DiurnalAmp    float64
	// SLOUs is the default per-tenant latency objective in
	// microseconds (0 disables violation counting for tenants without
	// their own).
	SLOUs float64
	// ChunkRequests/Depth/SyncDecode tune the decode-ahead streaming
	// of file-backed tenants (see ReplayFileOptions).
	ChunkRequests int
	Depth         int
	SyncDecode    bool
}

// ScenarioLabel renders the workload label a scenario's result carries:
// "scenario(a+b+c)" over the tenant names.
func ScenarioLabel(tenants []TenantSpec) string {
	names := make([]string, len(tenants))
	for i, t := range tenants {
		names[i] = tenantName(t)
	}
	return "scenario(" + strings.Join(names, "+") + ")"
}

func tenantName(t TenantSpec) string {
	if t.Name != "" {
		return t.Name
	}
	if t.Path != "" {
		return t.Path
	}
	return string(t.Workload)
}

// RunScenario replays a multi-tenant composition through scheme s. The
// logical address space is partitioned evenly across the tenants (each
// tenant's stream is offset into its own namespace); synthetic tenants
// generate presets sized to their share, file tenants stream with
// decode-ahead. The run is deterministic: identical parameters produce
// byte-identical results, including the per-tenant attribution.
//
// The device is preconditioned over the full address space with the
// first tenant's workload mixture (neutral across reruns and warm-cache
// compatible with plain runs of that workload).
func RunScenario(s Scheme, policy string, p Params, sp ScenarioParams) (*Result, error) {
	p = p.withDefaults()
	n := len(sp.Tenants)
	if n == 0 {
		return nil, fmt.Errorf("cagc: scenario needs at least one tenant")
	}
	if sp.DiurnalAmp < 0 || sp.DiurnalAmp >= 1 {
		return nil, fmt.Errorf("cagc: diurnal amplitude %g outside [0, 1)", sp.DiurnalAmp)
	}
	pol, err := ftl.PolicyByName(policy, p.Seed)
	if err != nil {
		return nil, err
	}
	opts := s.Options()
	opts.Policy = pol
	sched, err := event.ParseSched(p.Sched)
	if err != nil {
		return nil, err
	}
	cfg := sim.Config{
		Device:      flash.ScaledConfig(p.DeviceBytes),
		Options:     opts,
		Utilization: p.Utilization,
		BufferPages: p.BufferPages,
		QueueDepth:  p.QueueDepth,
		Tracer:      p.Trace,
		Sched:       sched,
		Ctx:         p.Ctx,
	}
	logical := sim.LogicalPagesOf(cfg)
	share := logical / uint64(n)
	if share == 0 {
		return nil, fmt.Errorf("cagc: %d tenants over %d logical pages leaves empty namespaces", n, logical)
	}

	var closers []func() error
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	srcs := make([]trace.Source, n)
	ranges := make([]trace.TenantRange, n)
	for i, t := range sp.Tenants {
		base := share * uint64(i)
		slo := t.SLOUs
		if slo == 0 {
			slo = sp.SLOUs
		}
		ranges[i] = trace.TenantRange{
			Name:  tenantName(t),
			Base:  base,
			Pages: share,
			SLO:   event.Time(slo * float64(event.Microsecond)),
		}
		var src trace.Source
		if t.Path != "" {
			format, err := trace.ParseFormat(t.Format)
			if err != nil {
				return nil, err
			}
			st, closer, err := trace.OpenFile(t.Path,
				trace.OpenOptions{Format: format, TimeScale: t.TimeScale},
				trace.StreamOptions{
					ChunkRequests: sp.ChunkRequests,
					Depth:         sp.Depth,
					Sync:          sp.SyncDecode,
					Tracer:        p.Trace,
				})
			if err != nil {
				return nil, fmt.Errorf("cagc: tenant %s: %w", ranges[i].Name, err)
			}
			closers = append(closers, closer)
			src = st
		} else {
			reqs := t.Requests
			if reqs == 0 {
				reqs = p.Requests / n
				if reqs == 0 {
					reqs = 1
				}
			}
			seed := t.Seed
			if seed == 0 {
				seed = p.Seed + int64(i)
			}
			spec, err := trace.Preset(t.Workload, share, reqs, seed)
			if err != nil {
				return nil, fmt.Errorf("cagc: tenant %s: %w", ranges[i].Name, err)
			}
			gen, err := trace.NewGenerator(spec)
			if err != nil {
				return nil, fmt.Errorf("cagc: tenant %s: %w", ranges[i].Name, err)
			}
			src = gen
		}
		if t.Rate > 0 && t.Rate != 1 {
			src = &trace.TimeScale{Src: src, Factor: 1 / t.Rate}
		}
		srcs[i] = &trace.Offset{Src: src, Base: base}
	}
	var merged trace.Source = trace.Merge(srcs...)
	if sp.DiurnalPeriod > 0 && sp.DiurnalAmp > 0 {
		merged = &trace.Diurnal{Src: merged, Period: sp.DiurnalPeriod, Amp: sp.DiurnalAmp}
	}

	// Precondition over the full address space with the first tenant's
	// content mixture (file tenants fall back to Homes).
	preW := sp.Tenants[0].Workload
	if sp.Tenants[0].Path != "" || preW == "" {
		preW = Homes
	}
	spec, err := trace.Preset(preW, logical, p.Requests, p.Seed)
	if err != nil {
		return nil, err
	}
	runner, offset, err := warmReplayRunner(cfg, spec, p)
	if err != nil {
		return nil, err
	}
	runner.SetTenants(ranges)
	res, err := runner.Replay(merged, offset, ScenarioLabel(sp.Tenants))
	if err != nil {
		return nil, fmt.Errorf("cagc: scenario: %w", err)
	}
	return res, nil
}
