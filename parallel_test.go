package cagc

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachStopsDispatchOnError(t *testing.T) {
	// Once a task fails, indices not yet handed to a worker must never
	// run: a sweep with a broken configuration should cost one run's
	// time, not n's. Task 0 errors immediately; every other task parks
	// until the failure is visible, so the dispatcher observes it before
	// it could hand out more than the handful of indices already in
	// flight.
	const n = 10_000
	boom := errors.New("boom 0")
	var failed atomic.Bool
	var executed atomic.Int64
	err := forEach(n, func(i int) error {
		executed.Add(1)
		if i == 0 {
			failed.Store(true)
			return boom
		}
		for !failed.Load() {
			runtime.Gosched()
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// The unbuffered dispatch channel bounds in-flight work to roughly
	// one index per worker; allow generous slack for indices dispatched
	// before the failure landed.
	if max := int64(4 * runtime.GOMAXPROCS(0)); executed.Load() > max {
		t.Fatalf("executed %d tasks after first error, want <= %d", executed.Load(), max)
	}
}
