package cagc

// Substrate performance tracking. The simulator's throughput bounds how
// far seed sweeps, queue-depth curves, and array studies can scale, so
// the hot-loop numbers (events/sec, ns per run, allocations per run)
// are measured by a harness that any command can invoke and are
// persisted as BENCH_substrate.json at the repository root — one file,
// rewritten by each performance PR, so the trajectory is reviewable in
// version control.

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"testing"
)

// SubstrateBench is the machine-readable record of one substrate
// benchmark: the BenchmarkSubstrateSingleRun workload (a full
// precondition + replay of one scheme on one trace) timed with the
// testing package's benchmark driver.
type SubstrateBench struct {
	Workload    string `json:"workload"`
	Scheme      string `json:"scheme"`
	Policy      string `json:"policy"`
	Requests    int    `json:"requests"`
	DeviceBytes int64  `json:"device_bytes"`

	Runs        int   `json:"runs"`          // benchmark iterations measured
	NsPerOp     int64 `json:"ns_per_op"`     // wall time per full simulation
	AllocsPerOp int64 `json:"allocs_per_op"` // heap allocations per full simulation
	BytesPerOp  int64 `json:"bytes_per_op"`  // heap bytes per full simulation

	// EventsPerOp counts the simulated operations of the measured phase
	// of one run (requests, flash reads/programs/erases, hash ops);
	// EventsPerSec divides by wall time — the headline throughput
	// metric tracked across PRs.
	EventsPerOp  uint64  `json:"events_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`

	GoVersion string `json:"go_version"`
	GoArch    string `json:"go_arch"`
}

// simulatedEvents tallies the discrete operations the substrate
// processed during the measured phase of a run.
func simulatedEvents(r *Result) uint64 {
	return r.Requests +
		r.FTL.UserReadPages + r.FTL.UserWritePages + r.FTL.UserTrimPages +
		r.FTL.GCReads + r.FTL.TotalPrograms() + r.FTL.BlocksErased +
		r.FTL.HashOps
}

// MeasureSubstrate times Run(w, s, policy, p) under the testing
// package's benchmark driver and returns the substrate report. One
// calibration run validates the configuration and counts events before
// timing starts.
func MeasureSubstrate(w Workload, s Scheme, policy string, p Params) (*SubstrateBench, error) {
	p = p.withDefaults()
	calib, err := Run(w, s, policy, p)
	if err != nil {
		return nil, err
	}
	var benchErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Run(w, s, policy, p); err != nil {
				benchErr = err
				b.FailNow()
			}
		}
	})
	if benchErr != nil {
		return nil, benchErr
	}
	sb := &SubstrateBench{
		Workload:    string(w),
		Scheme:      s.String(),
		Policy:      policy,
		Requests:    p.Requests,
		DeviceBytes: p.DeviceBytes,
		Runs:        br.N,
		NsPerOp:     br.NsPerOp(),
		AllocsPerOp: br.AllocsPerOp(),
		BytesPerOp:  br.AllocedBytesPerOp(),
		EventsPerOp: simulatedEvents(calib),
		GoVersion:   runtime.Version(),
		GoArch:      runtime.GOARCH,
	}
	if br.T > 0 {
		sb.EventsPerSec = float64(sb.EventsPerOp) * float64(br.N) / br.T.Seconds()
	}
	return sb, nil
}

// WriteBenchJSON emits the report as indented JSON.
func WriteBenchJSON(w io.Writer, sb *SubstrateBench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sb)
}

// WriteBenchFile writes the report to path (the tracked
// BENCH_substrate.json when invoked from cagcsim -bench).
func WriteBenchFile(path string, sb *SubstrateBench) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBenchJSON(f, sb); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
