package cagc

// Substrate performance tracking. The simulator's throughput bounds how
// far seed sweeps, queue-depth curves, and array studies can scale, so
// the hot-loop numbers (events/sec, ns per run, allocations per run)
// are measured by a harness that any command can invoke and are
// persisted as BENCH_substrate.json at the repository root — one file,
// rewritten by each performance PR, so the trajectory is reviewable in
// version control.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"cagc/internal/pool"
	"cagc/internal/sim"
	"cagc/internal/trace"
)

// SubstrateBench is the machine-readable record of one substrate
// benchmark: the BenchmarkSubstrateSingleRun workload (a full
// precondition + replay of one scheme on one trace) timed with the
// testing package's benchmark driver. The top-level per-op numbers are
// the headline workload's; Workloads carries one row per Table-II
// workload so a perf PR that helps the headline but regresses another
// trace shows up in the tracked trajectory.
type SubstrateBench struct {
	Workload    string `json:"workload"` // headline workload
	Scheme      string `json:"scheme"`
	Policy      string `json:"policy"`
	Requests    int    `json:"requests"`
	DeviceBytes int64  `json:"device_bytes"`

	Runs        int   `json:"runs"`          // benchmark iterations measured
	NsPerOp     int64 `json:"ns_per_op"`     // wall time per full simulation
	AllocsPerOp int64 `json:"allocs_per_op"` // heap allocations per full simulation
	BytesPerOp  int64 `json:"bytes_per_op"`  // heap bytes per full simulation

	// EventsPerOp counts the simulated operations of the measured phase
	// of one run (requests, flash reads/programs/erases, hash ops);
	// EventsPerSec divides by wall time — the headline throughput
	// metric tracked across PRs.
	EventsPerOp  uint64  `json:"events_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`

	// Phase split of one cold run at the benchmark scale: wall time of
	// build + preconditioning vs wall time of the measured replay. The
	// precondition share is what the warm-state snapshot cache
	// eliminates on every run after a sweep's first.
	PrecondNs int64 `json:"precond_ns"`
	ReplayNs  int64 `json:"replay_ns"`

	// Workloads holds one measured row per Table-II workload (same
	// scheme, policy, and parameters; the headline workload's row
	// repeats the top-level numbers).
	Workloads []WorkloadBench `json:"workloads"`

	// Sweep times a multi-point seed sweep cold (cache bypassed) and
	// warm (served by the snapshot cache), in the precondition-heavy
	// regime where sweeps actually run.
	Sweep SweepBench `json:"sweep"`

	// Batch times the batched multi-run execution engine: the same seed
	// sweep executed serially (one worker) and batched (one worker per
	// core), reporting the aggregate events/sec-per-machine headline.
	Batch BatchBench `json:"batch"`

	// Fleet times the fleet-scale sharded execution engine: the same
	// perturbed device population merged with one worker and with one
	// worker per core, reporting devices/sec and the per-core aggregate.
	Fleet FleetBench `json:"fleet"`

	// ReplayStream times the file-replay ingestion pipeline: the same
	// binary trace file replayed with synchronous decode and with the
	// decode-ahead background reader, plus the stream's ring telemetry
	// (chunks, stall ratio, peak reader-side live bytes).
	ReplayStream ReplayStreamBench `json:"replay_stream"`

	// History is the PR-over-PR trajectory: the numbers each earlier
	// performance PR committed (pinned in substrateHistory, mined from
	// this repository's own BENCH_substrate.json history), followed by
	// the rows this measurement just produced. Machines differ, so rows
	// are comparable within one machine's history, not across CI fleets;
	// the shape of the curve is what the table preserves.
	History []HistoryRow `json:"history"`

	GoVersion string `json:"go_version"`
	GoArch    string `json:"go_arch"`
}

// WorkloadBench is one per-workload row of the substrate report.
type WorkloadBench struct {
	Workload     string  `json:"workload"`
	Runs         int     `json:"runs"`
	NsPerOp      int64   `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	EventsPerOp  uint64  `json:"events_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
	PrecondNs    int64   `json:"precond_ns"`
	ReplayNs     int64   `json:"replay_ns"`
}

// SweepBench records one cold-vs-warm sweep comparison. All fields are
// scalars so SubstrateBench stays comparable (the JSON round-trip test
// relies on that).
type SweepBench struct {
	Name           string  `json:"name"`
	Points         int     `json:"points"`
	ColdNs         int64   `json:"cold_ns"`         // wall time, cache bypassed
	WarmNs         int64   `json:"warm_ns"`         // wall time, snapshot cache enabled
	Reduction      float64 `json:"reduction"`       // 1 - warm/cold
	CacheHits      uint64  `json:"cache_hits"`      // hits during the warm sweep
	CacheMisses    uint64  `json:"cache_misses"`    // misses during the warm sweep
	CacheEvictions uint64  `json:"cache_evictions"` // LRU evictions during the warm sweep
}

// BatchBench records the batched-engine comparison: one identical warm
// seed sweep executed with one worker and with one worker per core.
// Machines differ in core count, so the tracked numbers are normalized:
// AggPerCoreSerial vs AggPerCoreBatched (aggregate events/sec divided
// by the worker count) measures per-core efficiency — batching must not
// cost throughput — while Speedup (serial wall / batched wall) carries
// the machine-level win and is meaningful relative to NumCPU.
type BatchBench struct {
	Name     string `json:"name"`
	Runs     int    `json:"runs"`
	Workers  int    `json:"workers"` // workers in the batched leg (NumCPU)
	NumCPU   int    `json:"num_cpu"` // cores of the measuring machine
	SerialNs int64  `json:"serial_ns"`
	BatchNs  int64  `json:"batch_ns"`
	Events   uint64 `json:"events"` // simulated events per leg (legs are identical)

	AggSerial         float64 `json:"agg_events_per_sec_serial"`
	AggBatched        float64 `json:"agg_events_per_sec_batched"`
	AggPerCoreSerial  float64 `json:"agg_per_core_serial"`  // AggSerial / 1 worker
	AggPerCoreBatched float64 `json:"agg_per_core_batched"` // AggBatched / Workers
	Speedup           float64 `json:"speedup"`              // SerialNs / BatchNs

	// Scheduler/recycler telemetry of the batched leg: work-steal count
	// (pool.Run deque steals), dirty-chunk re-seeds served from the
	// clone free-list, and the bytes those re-seeds copied. Wall-clock
	// facts, never part of deterministic results.
	Steals      uint64 `json:"steals"`
	Reseeds     uint64 `json:"reseeds"`
	ReseedBytes uint64 `json:"reseed_bytes"`
}

// FleetBench records the fleet-engine comparison: one fixed perturbed
// device population (utilization skew, GC stagger, diurnal arrival
// phase; the shape is pinned in the fleetBench* constants) executed
// with one worker and with one worker per core, both after a first
// pass has built the class snapshots. Like BatchBench the tracked
// numbers are per-core normalized — DevicesPerSecPerCore and
// AggPerCore survive machines with different core counts — while
// Speedup carries the machine-level win relative to NumCPU. PeakClones
// is the clone-residency high-water mark of the parallel leg; the
// free-list recycler bounds it by Workers+1 regardless of fleet size.
type FleetBench struct {
	Name              string `json:"name"`
	Devices           int    `json:"devices"`
	ShardSize         int    `json:"shard_size"`
	RequestsPerDevice int    `json:"requests_per_device"`
	Classes           int    `json:"classes"` // warm snapshots (util × stagger)
	Workers           int    `json:"workers"` // workers in the parallel leg (NumCPU)
	NumCPU            int    `json:"num_cpu"` // cores of the measuring machine
	SerialNs          int64  `json:"serial_ns"`
	FleetNs           int64  `json:"fleet_ns"`
	Events            uint64 `json:"events"` // simulated events per leg (legs are identical)

	DevicesPerSec        float64 `json:"devices_per_sec"` // parallel leg
	DevicesPerSecPerCore float64 `json:"devices_per_sec_per_core"`
	AggEventsPerSec      float64 `json:"agg_events_per_sec"`
	AggPerCore           float64 `json:"agg_per_core"`
	Speedup              float64 `json:"speedup"` // SerialNs / FleetNs

	PeakClones int `json:"peak_clones"`

	// Scheduler/recycler telemetry of the parallel leg, mirroring
	// BatchBench: shard steals, dirty-chunk re-seeds, and re-seed bytes.
	Steals      uint64 `json:"steals"`
	Reseeds     uint64 `json:"reseeds"`
	ReseedBytes uint64 `json:"reseed_bytes"`
}

// ReplayStreamBench records the streaming-ingestion comparison: one
// generated binary trace replayed from disk twice over a warm snapshot
// — decode on the simulator goroutine (sync) vs the decode-ahead
// background reader — with the stream's ring telemetry. Both legs
// produce byte-identical results; the section tracks what the overlap
// buys and that reader-side memory stays bounded. All fields are
// scalars so SubstrateBench stays comparable.
type ReplayStreamBench struct {
	Name      string `json:"name"`
	Requests  int    `json:"requests"`
	FileBytes int64  `json:"file_bytes"`
	SyncNs    int64  `json:"sync_ns"`
	StreamNs  int64  `json:"stream_ns"`
	Events    uint64 `json:"events"` // simulated events per leg (legs are identical)

	EventsPerSecSync   float64 `json:"events_per_sec_sync"`
	EventsPerSecStream float64 `json:"events_per_sec_stream"`
	BytesPerSec        float64 `json:"bytes_per_sec"` // file bytes / stream wall
	Speedup            float64 `json:"speedup"`       // SyncNs / StreamNs

	// Ring telemetry of the decode-ahead leg.
	Chunks          uint64  `json:"chunks"`
	Stalls          uint64  `json:"stalls"`
	StallRatio      float64 `json:"stall_ratio"`
	PeakReaderBytes int64   `json:"peak_reader_bytes"`
}

// HistoryRow is one (PR, workload) point of the substrate trajectory:
// wall time, allocation count, and event throughput of a full cold run
// at the canonical benchmark scale (-requests 6000, 16 MiB device).
type HistoryRow struct {
	PR           string  `json:"pr"`     // e.g. "PR 5"
	Change       string  `json:"change"` // the PR's headline substrate change
	Workload     string  `json:"workload"`
	NsPerOp      int64   `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// substrateHistory pins the numbers earlier performance PRs recorded in
// BENCH_substrate.json (recovered from git history; PRs 1–2 measured
// only the Mail headline, PR 3–4's file carried all three workloads).
// Appended verbatim to every new report so the trajectory survives the
// file being rewritten.
var substrateHistory = []HistoryRow{
	{PR: "PR 1", Change: "allocation-free hot simulation loop", Workload: "Mail", NsPerOp: 6055137, AllocsPerOp: 7123, EventsPerSec: 8.95e6},
	{PR: "PR 2", Change: "warm-state snapshot cache", Workload: "Mail", NsPerOp: 6573805, AllocsPerOp: 6945, EventsPerSec: 8.24e6},
	{PR: "PR 3-4", Change: "open-addressed hot-path tables; tracing kept allocation-free", Workload: "Mail", NsPerOp: 6531607, AllocsPerOp: 293, EventsPerSec: 8297192},
	{PR: "PR 3-4", Change: "open-addressed hot-path tables; tracing kept allocation-free", Workload: "Homes", NsPerOp: 8350132, AllocsPerOp: 295, EventsPerSec: 8074483},
	{PR: "PR 3-4", Change: "open-addressed hot-path tables; tracing kept allocation-free", Workload: "Web-vm", NsPerOp: 17652755, AllocsPerOp: 306, EventsPerSec: 9620934},
	{PR: "PR 5", Change: "calendar-queue event scheduler, event-driven replay", Workload: "Mail", NsPerOp: 6886071, AllocsPerOp: 338, EventsPerSec: 7870089},
	{PR: "PR 5", Change: "calendar-queue event scheduler, event-driven replay", Workload: "Homes", NsPerOp: 7285683, AllocsPerOp: 341, EventsPerSec: 9254176},
	{PR: "PR 5", Change: "calendar-queue event scheduler, event-driven replay", Workload: "Web-vm", NsPerOp: 15821489, AllocsPerOp: 341, EventsPerSec: 10734513},
	{PR: "PR 6", Change: "hybrid auto scheduler, batched multi-run engine, LRU snapshot registry", Workload: "Mail", NsPerOp: 5202171, AllocsPerOp: 302, EventsPerSec: 10417572.7},
	{PR: "PR 6", Change: "hybrid auto scheduler, batched multi-run engine, LRU snapshot registry", Workload: "Homes", NsPerOp: 5623923, AllocsPerOp: 304, EventsPerSec: 11988606.5},
	{PR: "PR 6", Change: "hybrid auto scheduler, batched multi-run engine, LRU snapshot registry", Workload: "Web-vm", NsPerOp: 12189873, AllocsPerOp: 315, EventsPerSec: 13932547.9},
	{PR: "PR 7", Change: "fleet-scale sharded execution, clone free-list recycling", Workload: "Mail", NsPerOp: 5756963, AllocsPerOp: 302, EventsPerSec: 9413643.8},
	{PR: "PR 7", Change: "fleet-scale sharded execution, clone free-list recycling", Workload: "Homes", NsPerOp: 6135316, AllocsPerOp: 304, EventsPerSec: 10989326.3},
	{PR: "PR 7", Change: "fleet-scale sharded execution, clone free-list recycling", Workload: "Web-vm", NsPerOp: 13210684, AllocsPerOp: 315, EventsPerSec: 12855958.1},
	{PR: "PR 8", Change: "chunked copy-on-write re-seeding, batch-aware work stealing", Workload: "Mail", NsPerOp: 5303677, AllocsPerOp: 302, EventsPerSec: 10218192.467304531},
	{PR: "PR 8", Change: "chunked copy-on-write re-seeding, batch-aware work stealing", Workload: "Homes", NsPerOp: 5754677, AllocsPerOp: 304, EventsPerSec: 11716208.451397635},
	{PR: "PR 8", Change: "chunked copy-on-write re-seeding, batch-aware work stealing", Workload: "Web-vm", NsPerOp: 12930061, AllocsPerOp: 315, EventsPerSec: 13134972.678691823},
}

// currentHistoryLabel names the rows this measurement contributes.
const (
	currentHistoryPR     = "PR 10"
	currentHistoryChange = "decode-ahead streaming trace ingestion, multi-tenant scenario replay"
)

// EventsOf tallies the discrete operations the substrate processed
// during the measured phase of a run — the numerator of every
// events/sec throughput figure (bench reports, batch aggregates, the
// serving layer's /metrics).
func EventsOf(r *Result) uint64 {
	return r.Requests +
		r.FTL.UserReadPages + r.FTL.UserWritePages + r.FTL.UserTrimPages +
		r.FTL.GCReads + r.FTL.TotalPrograms() + r.FTL.BlocksErased +
		r.FTL.HashOps
}

// simulatedEvents is the historical internal name of EventsOf.
func simulatedEvents(r *Result) uint64 { return EventsOf(r) }

// MeasureSubstrate times Run(w, s, policy, p) under the testing
// package's benchmark driver and returns the substrate report: the
// headline numbers for w, one row per Table-II workload, and the
// cold-vs-warm sweep comparison for w. The per-run numbers are
// measured with ColdStart forced — a full build + precondition +
// replay every iteration — so they stay comparable across PRs
// regardless of the snapshot cache; what the cache buys is recorded
// separately in the phase split and the Sweep section. Note: the sweep
// comparison resets the process-wide warm-state cache.
func MeasureSubstrate(w Workload, s Scheme, policy string, p Params) (*SubstrateBench, error) {
	p = p.withDefaults()
	p.ColdStart = true
	head, err := measureWorkload(w, s, policy, p)
	if err != nil {
		return nil, err
	}
	sb := &SubstrateBench{
		Workload:     string(w),
		Scheme:       s.String(),
		Policy:       policy,
		Requests:     p.Requests,
		DeviceBytes:  p.DeviceBytes,
		Runs:         head.Runs,
		NsPerOp:      head.NsPerOp,
		AllocsPerOp:  head.AllocsPerOp,
		BytesPerOp:   head.BytesPerOp,
		EventsPerOp:  head.EventsPerOp,
		EventsPerSec: head.EventsPerSec,
		PrecondNs:    head.PrecondNs,
		ReplayNs:     head.ReplayNs,
		GoVersion:    runtime.Version(),
		GoArch:       runtime.GOARCH,
	}
	for _, each := range Workloads {
		row := head
		if each != w {
			if row, err = measureWorkload(each, s, policy, p); err != nil {
				return nil, err
			}
		}
		sb.Workloads = append(sb.Workloads, row)
	}
	if sb.Sweep, err = measureSweep(w, s, policy, p); err != nil {
		return nil, err
	}
	if sb.Batch, err = measureBatch(w, s, policy, p); err != nil {
		return nil, err
	}
	if sb.Fleet, err = measureFleet(w, s, policy, p); err != nil {
		return nil, err
	}
	if sb.ReplayStream, err = measureReplayStream(w, s, policy, p); err != nil {
		return nil, err
	}
	sb.History = append(sb.History, substrateHistory...)
	for _, row := range sb.Workloads {
		sb.History = append(sb.History, HistoryRow{
			PR:           currentHistoryPR,
			Change:       currentHistoryChange,
			Workload:     row.Workload,
			NsPerOp:      row.NsPerOp,
			AllocsPerOp:  row.AllocsPerOp,
			EventsPerSec: row.EventsPerSec,
		})
	}
	return sb, nil
}

// measureWorkload produces one per-workload row: benchmark-driver
// timing of the full cold run plus the phase split.
func measureWorkload(w Workload, s Scheme, policy string, p Params) (WorkloadBench, error) {
	calib, err := Run(w, s, policy, p)
	if err != nil {
		return WorkloadBench{}, err
	}
	var benchErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Run(w, s, policy, p); err != nil {
				benchErr = err
				b.FailNow()
			}
		}
	})
	if benchErr != nil {
		return WorkloadBench{}, benchErr
	}
	row := WorkloadBench{
		Workload:    string(w),
		Runs:        br.N,
		NsPerOp:     br.NsPerOp(),
		AllocsPerOp: br.AllocsPerOp(),
		BytesPerOp:  br.AllocedBytesPerOp(),
		EventsPerOp: simulatedEvents(calib),
	}
	if br.T > 0 {
		row.EventsPerSec = float64(row.EventsPerOp) * float64(br.N) / br.T.Seconds()
	}
	if row.PrecondNs, row.ReplayNs, err = measureSplit(w, s, policy, p); err != nil {
		return WorkloadBench{}, err
	}
	return row, nil
}

// measureSplit times the phases of one cold run at the benchmark
// scale: device build + preconditioning fill vs measured replay.
func measureSplit(w Workload, s Scheme, policy string, p Params) (precondNs, replayNs int64, err error) {
	cfg, spec, err := buildRun(w, s.Options(), policy, p)
	if err != nil {
		return 0, 0, err
	}
	t0 := time.Now()
	r, err := sim.NewRunner(cfg)
	if err != nil {
		return 0, 0, err
	}
	pre, err := trace.NewPreconditioner(spec)
	if err != nil {
		return 0, 0, err
	}
	offset, err := r.Precondition(pre)
	if err != nil {
		return 0, 0, err
	}
	t1 := time.Now()
	gen, err := trace.NewGenerator(spec)
	if err != nil {
		return 0, 0, err
	}
	if _, err := r.Replay(gen, offset, spec.Name); err != nil {
		return 0, 0, err
	}
	t2 := time.Now()
	return t1.Sub(t0).Nanoseconds(), t2.Sub(t1).Nanoseconds(), nil
}

// The sweep comparison runs in the regime sweeps actually occupy: many
// short measured runs against one large preconditioned device, where
// the fill dominates each cold point. Shape fixed so the recorded
// trajectory is comparable across machines and PRs.
const (
	sweepSeeds       = 8
	sweepDeviceBytes = 64 << 20
	sweepRequests    = 1000
)

// measureSweep times an identical multi-point seed sweep twice: cold
// (snapshot cache bypassed) and warm (cache enabled, reset first so the
// first point pays the one build). It resets the process-wide cache.
func measureSweep(w Workload, s Scheme, policy string, p Params) (SweepBench, error) {
	seeds := make([]int64, sweepSeeds)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	q := p
	q.DeviceBytes = sweepDeviceBytes
	q.Requests = sweepRequests
	run := func(cold bool) (time.Duration, error) {
		q := q
		q.ColdStart = cold
		start := time.Now()
		if _, err := RunSeeds(w, s, policy, q, seeds); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	coldD, err := run(true)
	if err != nil {
		return SweepBench{}, err
	}
	ResetWarmCache()
	warmD, err := run(false)
	if err != nil {
		return SweepBench{}, err
	}
	st := WarmCacheStats()
	ResetWarmCache()
	return SweepBench{
		Name: fmt.Sprintf("%s × %s × %s, %d seeds, %d MiB device, %d reqs/run",
			w, s, policy, sweepSeeds, sweepDeviceBytes>>20, sweepRequests),
		Points:         sweepSeeds,
		ColdNs:         coldD.Nanoseconds(),
		WarmNs:         warmD.Nanoseconds(),
		Reduction:      reduction(float64(coldD), float64(warmD)),
		CacheHits:      st.Hits,
		CacheMisses:    st.Misses,
		CacheEvictions: st.Evictions,
	}, nil
}

// measureBatch times the batched engine against its own serial leg: the
// same warm seed sweep with 1 worker and with NumCPU workers. Both legs
// run after a first pass has populated the snapshot cache, so the
// comparison isolates execution, not snapshot building. It resets the
// process-wide cache.
func measureBatch(w Workload, s Scheme, policy string, p Params) (BatchBench, error) {
	q := p
	q.DeviceBytes = sweepDeviceBytes
	q.Requests = sweepRequests
	q.ColdStart = false
	seeds := make([]int64, sweepSeeds)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	items := SeedBatch(w, s, policy, q, seeds)
	ResetWarmCache()
	defer ResetWarmCache()
	if warm := RunBatch(items, 1); warm.Err() != nil { // populate the snapshot cache
		return BatchBench{}, warm.Err()
	}
	serial := RunBatch(items, 1)
	if err := serial.Err(); err != nil {
		return BatchBench{}, err
	}
	steals0 := pool.Steals()
	clones0 := sim.CloneGaugeStats()
	batched := RunBatch(items, runtime.NumCPU())
	if err := batched.Err(); err != nil {
		return BatchBench{}, err
	}
	clones1 := sim.CloneGaugeStats()
	bb := BatchBench{
		Name: fmt.Sprintf("%s × %s × %s, %d seeds, %d MiB device, %d reqs/run (warm)",
			w, s, policy, sweepSeeds, sweepDeviceBytes>>20, sweepRequests),
		Runs:       len(items),
		Workers:    batched.Workers,
		NumCPU:     runtime.NumCPU(),
		SerialNs:   serial.Wall.Nanoseconds(),
		BatchNs:    batched.Wall.Nanoseconds(),
		Events:     batched.Events,
		AggSerial:  serial.AggregateEventsPerSec(),
		AggBatched: batched.AggregateEventsPerSec(),
	}
	bb.Steals = pool.Steals() - steals0
	bb.Reseeds = clones1.Reseeds - clones0.Reseeds
	bb.ReseedBytes = clones1.ReseedBytes - clones0.ReseedBytes
	bb.AggPerCoreSerial = bb.AggSerial
	if bb.Workers > 0 {
		bb.AggPerCoreBatched = bb.AggBatched / float64(bb.Workers)
	}
	if bb.BatchNs > 0 {
		bb.Speedup = float64(bb.SerialNs) / float64(bb.BatchNs)
	}
	return bb, nil
}

// The fleet comparison shape is fixed like the sweep's so the recorded
// trajectory is comparable across PRs: a small perturbed fleet at the
// benchmark device scale, shards sized so parallelism is not capped by
// shard count on machines up to 16 cores.
const (
	fleetBenchDevices  = 256
	fleetBenchShard    = 16
	fleetBenchRequests = 400
	fleetBenchUtilCls  = 2
	fleetBenchStagger  = 2
	fleetBenchSpread   = 0.08
	fleetBenchDiurnal  = 0.4
)

// measureFleet times the fleet engine against its own serial leg: the
// identical device population merged with 1 worker and with NumCPU
// workers. A first pass builds the class snapshots so both legs measure
// execution, not preconditioning. It resets the process-wide cache and
// the clone-residency gauge.
func measureFleet(w Workload, s Scheme, policy string, p Params) (FleetBench, error) {
	q := p
	q.Requests = fleetBenchRequests
	q.ColdStart = false
	fp := FleetParams{
		Devices:        fleetBenchDevices,
		ShardSize:      fleetBenchShard,
		UtilSpread:     fleetBenchSpread,
		UtilClasses:    fleetBenchUtilCls,
		StaggerClasses: fleetBenchStagger,
		Diurnal:        fleetBenchDiurnal,
	}
	ResetWarmCache()
	defer ResetWarmCache()
	warm := fp
	warm.Workers = 1
	if _, err := RunFleet(w, s, policy, q, warm); err != nil { // build class snapshots
		return FleetBench{}, err
	}
	serialFp := fp
	serialFp.Workers = 1
	serial, err := RunFleet(w, s, policy, q, serialFp)
	if err != nil {
		return FleetBench{}, err
	}
	parFp := fp
	parFp.Workers = runtime.NumCPU()
	sim.ResetCloneGauge()
	steals0 := pool.Steals()
	par, err := RunFleet(w, s, policy, q, parFp)
	if err != nil {
		return FleetBench{}, err
	}
	parClones := sim.CloneGaugeStats()
	fb := FleetBench{
		Name: fmt.Sprintf("%s × %s × %s, %d devices, %d reqs/device, %d×%d classes (warm)",
			w, s, policy, fleetBenchDevices, fleetBenchRequests, fleetBenchUtilCls, fleetBenchStagger),
		Devices:           fleetBenchDevices,
		ShardSize:         fleetBenchShard,
		RequestsPerDevice: fleetBenchRequests,
		Classes:           fleetBenchUtilCls * fleetBenchStagger,
		Workers:           par.Workers,
		NumCPU:            runtime.NumCPU(),
		SerialNs:          serial.Wall.Nanoseconds(),
		FleetNs:           par.Wall.Nanoseconds(),
		Events:            par.Result.Events,
		DevicesPerSec:     par.DevicesPerSec(),
		AggEventsPerSec:   par.AggregateEventsPerSec(),
		PeakClones:        parClones.Peak,
		Steals:            pool.Steals() - steals0,
		Reseeds:           parClones.Reseeds,
		ReseedBytes:       parClones.ReseedBytes,
	}
	if fb.Workers > 0 {
		fb.DevicesPerSecPerCore = fb.DevicesPerSec / float64(fb.Workers)
		fb.AggPerCore = fb.AggEventsPerSec / float64(fb.Workers)
	}
	if fb.FleetNs > 0 {
		fb.Speedup = float64(fb.SerialNs) / float64(fb.FleetNs)
	}
	return fb, nil
}

// replayStreamRequests fixes the ingestion-bench trace length: long
// enough that decode genuinely overlaps simulation, short enough for
// the bench harness.
const replayStreamRequests = 100000

// measureReplayStream generates a binary trace file at the benchmark
// device scale and replays it twice over a warm snapshot: synchronous
// decode vs the decode-ahead stream. Results are byte-identical; the
// section records the wall-clock difference and the stream's ring
// telemetry. It resets the process-wide snapshot cache.
func measureReplayStream(w Workload, s Scheme, policy string, p Params) (ReplayStreamBench, error) {
	q := p
	q.ColdStart = false
	spec, err := WorkloadSpec(w, q)
	if err != nil {
		return ReplayStreamBench{}, err
	}
	spec.Requests = replayStreamRequests
	gen, err := NewTraceGenerator(spec)
	if err != nil {
		return ReplayStreamBench{}, err
	}
	f, err := os.CreateTemp("", "cagc-replay-bench-*.ctr")
	if err != nil {
		return ReplayStreamBench{}, err
	}
	path := f.Name()
	f.Close()
	defer os.Remove(path)
	if _, err := WriteTraceFile(path, gen); err != nil {
		return ReplayStreamBench{}, err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return ReplayStreamBench{}, err
	}
	ResetWarmCache()
	defer ResetWarmCache()
	// Warm-up leg builds the snapshot so both timed legs measure replay.
	if _, err := ReplayFile(path, w, s, policy, q, ReplayFileOptions{SyncDecode: true}); err != nil {
		return ReplayStreamBench{}, err
	}
	t0 := time.Now()
	syncRes, err := ReplayFile(path, w, s, policy, q, ReplayFileOptions{SyncDecode: true})
	if err != nil {
		return ReplayStreamBench{}, err
	}
	syncD := time.Since(t0)
	var stats TraceStreamStats
	t1 := time.Now()
	streamRes, err := ReplayFile(path, w, s, policy, q, ReplayFileOptions{Stats: &stats})
	if err != nil {
		return ReplayStreamBench{}, err
	}
	streamD := time.Since(t1)
	events := EventsOf(streamRes)
	if got := EventsOf(syncRes); got != events {
		return ReplayStreamBench{}, fmt.Errorf("cagc: replay bench legs diverged: %d vs %d events", got, events)
	}
	rb := ReplayStreamBench{
		Name: fmt.Sprintf("%s × %s × %s, %d reqs from binary file (warm)",
			w, s, policy, replayStreamRequests),
		Requests:        replayStreamRequests,
		FileBytes:       fi.Size(),
		SyncNs:          syncD.Nanoseconds(),
		StreamNs:        streamD.Nanoseconds(),
		Events:          events,
		Chunks:          stats.Chunks,
		Stalls:          stats.Stalls,
		StallRatio:      stats.StallRatio(),
		PeakReaderBytes: stats.PeakLiveBytes,
	}
	if rb.SyncNs > 0 {
		rb.EventsPerSecSync = float64(events) / syncD.Seconds()
	}
	if rb.StreamNs > 0 {
		rb.EventsPerSecStream = float64(events) / streamD.Seconds()
		rb.BytesPerSec = float64(fi.Size()) / streamD.Seconds()
		rb.Speedup = float64(rb.SyncNs) / float64(rb.StreamNs)
	}
	return rb, nil
}

// WriteBenchJSON emits the report as indented JSON.
func WriteBenchJSON(w io.Writer, sb *SubstrateBench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sb)
}

// WriteBenchFile writes the report to path (the tracked
// BENCH_substrate.json when invoked from cagcsim -bench).
func WriteBenchFile(path string, sb *SubstrateBench) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBenchJSON(f, sb); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
