package cagc

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cagc/internal/trace"
)

// writeTestTrace generates a workload trace file and returns its path.
func writeTestTrace(t *testing.T, w Workload, p Params, name string) string {
	t.Helper()
	spec, err := WorkloadSpec(w, p)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewTraceGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if _, err := WriteTraceFile(path, gen); err != nil {
		t.Fatal(err)
	}
	return path
}

func summaryJSON(t *testing.T, r *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The streaming contract end to end: the same trace produces
// byte-identical result documents from the in-memory path, the binary
// file, a text conversion, a gzip copy, and at every chunk size — with
// decode-ahead on or off.
func TestReplayFileByteIdentity(t *testing.T) {
	p := testParams()
	p.Requests = 1500
	binPath := writeTestTrace(t, WebVM, p, "t.ctr")

	// In-memory reference: the same generated stream, no file.
	spec, err := WorkloadSpec(WebVM, p)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewTraceGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ReplayTrace(gen, WebVM, CAGC, "greedy", p)
	if err != nil {
		t.Fatal(err)
	}
	want := summaryJSON(t, ref)

	// Text and gzip conversions of the same requests.
	textPath := filepath.Join(t.TempDir(), "t.txt")
	if err := convertTrace(binPath, textPath, true); err != nil {
		t.Fatal(err)
	}
	gzPath := filepath.Join(t.TempDir(), "t.ctr.gz")
	if err := convertTrace(binPath, gzPath, false); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		path string
		o    ReplayFileOptions
	}{
		{"binary default", binPath, ReplayFileOptions{}},
		{"binary chunk=1", binPath, ReplayFileOptions{ChunkRequests: 1}},
		{"binary chunk=64", binPath, ReplayFileOptions{ChunkRequests: 64}},
		{"binary chunk=4096", binPath, ReplayFileOptions{ChunkRequests: 4096}},
		{"binary sync", binPath, ReplayFileOptions{SyncDecode: true}},
		{"binary forced format", binPath, ReplayFileOptions{Format: "binary"}},
		{"text sniffed", textPath, ReplayFileOptions{}},
		{"text chunk=1", textPath, ReplayFileOptions{ChunkRequests: 1, SyncDecode: true}},
		{"gzip sniffed", gzPath, ReplayFileOptions{}},
	}
	for _, c := range cases {
		var stats TraceStreamStats
		c.o.Stats = &stats
		res, err := ReplayFile(c.path, WebVM, CAGC, "greedy", p, c.o)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := summaryJSON(t, res); !bytes.Equal(got, want) {
			t.Fatalf("%s: result document diverged from in-memory replay\n got: %s\nwant: %s", c.name, got, want)
		}
		if stats.Requests != 1500 {
			t.Fatalf("%s: stats.Requests = %d", c.name, stats.Requests)
		}
	}
}

// convertTrace re-encodes a binary trace file (text or binary out,
// gzip by suffix) — the cagctrace convert path as a library round trip.
func convertTrace(in, out string, asText bool) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	src, err := trace.Open(f, trace.OpenOptions{})
	if err != nil {
		return err
	}
	if asText {
		o, err := os.Create(out)
		if err != nil {
			return err
		}
		if _, err := trace.WriteText(o, src); err != nil {
			o.Close()
			return err
		}
		if err := trace.SourceErr(src); err != nil {
			o.Close()
			return err
		}
		return o.Close()
	}
	if _, err := WriteTraceFile(out, src); err != nil {
		return err
	}
	return trace.SourceErr(src)
}

// S1: a corrupt or truncated trace must fail the replay, never produce
// a result from a silently shortened stream.
func TestReplayFileCorruptFails(t *testing.T) {
	p := testParams()
	p.Requests = 800
	binPath := writeTestTrace(t, Mail, p, "t.ctr")

	// Truncate the binary container mid-record.
	data, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(t.TempDir(), "cut.ctr")
	if err := os.WriteFile(cut, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayFile(cut, Mail, CAGC, "greedy", p, ReplayFileOptions{}); err == nil {
		t.Fatal("truncated binary trace replayed without error")
	}

	// Corrupt a line in the middle of a text trace.
	textPath := filepath.Join(t.TempDir(), "t.txt")
	if err := convertTrace(binPath, textPath, true); err != nil {
		t.Fatal(err)
	}
	lines, err := os.ReadFile(textPath)
	if err != nil {
		t.Fatal(err)
	}
	split := strings.SplitAfter(string(lines), "\n")
	split[len(split)/2] = "XX corrupt line XX\n"
	bad := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(bad, []byte(strings.Join(split, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, sync := range []bool{false, true} {
		if _, err := ReplayFile(bad, Mail, CAGC, "greedy", p, ReplayFileOptions{SyncDecode: sync}); err == nil {
			t.Fatalf("sync=%v: corrupt text trace replayed without error", sync)
		}
	}
}

func TestParseTraceFormat(t *testing.T) {
	for in, want := range map[string]string{
		"": "auto", "auto": "auto", "bin": "binary", "cagc": "binary",
		"txt": "text", "FIU": "fiu",
	} {
		got, err := ParseTraceFormat(in)
		if err != nil || got != want {
			t.Errorf("ParseTraceFormat(%q) = %q, %v", in, got, err)
		}
	}
	if _, err := ParseTraceFormat("csv"); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := ReplayFile("nope", Mail, CAGC, "greedy", testParams(),
		ReplayFileOptions{Format: "csv"}); err == nil {
		t.Fatal("bad format reached the file open")
	}
}
